#include "mincut/exact_mincut.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>

#include "congest/gather_baseline.hpp"
#include "mincut/two_respect.hpp"
#include "mincut/witness.hpp"
#include "minoragg/tree_primitives.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tree/rooted_tree.hpp"
#include "util/thread_pool.hpp"

namespace umc::mincut {

namespace {

#if !defined(UMC_OBS_DISABLED)
struct MincutTaskMetrics {
  obs::Counter& spawned = obs::MetricsRegistry::global().counter(
      "umc_mincut_tasks_spawned_total", {},
      "Tasks queued into exact_mincut TaskGraph sessions (tree solves plus "
      "intra-tree items).");
  obs::Counter& helped = obs::MetricsRegistry::global().counter(
      "umc_mincut_tasks_helped_total", {},
      "Tasks a joining thread claimed from another group's queue instead of "
      "blocking (help-first scheduling).");
  obs::Counter& sessions = obs::MetricsRegistry::global().counter(
      "umc_mincut_task_sessions_total", {},
      "Non-degraded exact_mincut TaskGraph sessions (width > 1).");
};

MincutTaskMetrics& mincut_task_metrics() {
  static MincutTaskMetrics m;
  return m;
}
#endif

}  // namespace

ExactMinCutResult exact_mincut(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                               const PackingConfig& config) {
  return exact_mincut(g, rng, ledger, config, ThreadPool::configured_threads());
}

ExactMinCutResult exact_mincut(const WeightedGraph& g, Rng& rng, minoragg::Ledger& ledger,
                               const PackingConfig& config, int num_threads) {
  UMC_ASSERT(g.n() >= 2);
  UMC_OBS_SPAN_VAR_L(obs_exact, "mincut/exact", "mincut", ledger.rounds());
  obs_exact.arg("n", g.n());
  obs_exact.arg("m", g.m());
  ExactMinCutResult out;

  if (g.n() == 2) {
    // Single possible cut; one aggregation round reads it off.
    ledger.charge(1);
    out.value = g.total_weight();
    out.num_trees = 0;
    return out;
  }

  // Every min-cut 2-respects some tree of the packing (whp); orient each
  // (unrooted) packing tree (Theorem 48), then solve the deterministic
  // 2-respecting problem and keep the best. Packing and solving are
  // pipelined through ONE TaskGraph session sharing the pool: the session
  // root runs the packing producer — whose per-phase Borůvka candidate
  // folds themselves spawn as chunk tasks (see BoruvkaPacker), so packing
  // iterations parallelize on the same workers — and every tree it emits
  // immediately becomes a solve task: tree 0 starts solving while Borůvka
  // iteration 1 still runs, instead of waiting behind the full-packing
  // barrier. Each solve gets a private Ledger and a disjoint result slot
  // (deque elements have stable addresses, so the closures bind references
  // taken before spawn), and everything merges below in tree-index order —
  // cut value, winning-tree choice, and charged rounds are bit-identical at
  // any thread width. `ledger` and `rng` are touched only by the producer
  // during the session. The producer also records the packing into the
  // PackingCache, which the guarded self-check's same-seed replay hits
  // instead of repacking (see run_guards).
  std::deque<std::vector<EdgeId>> trees;
  std::deque<CutResult> results;
  std::deque<minoragg::Ledger> tree_ledgers;
  const int width = std::max(1, num_threads);
  const TaskGraph::Stats stats = TaskGraph::session(width, [&] {
    TaskGroup solves;
    (void)tree_packing(g, rng, ledger, config, [&](std::vector<EdgeId> tree) {
      trees.push_back(std::move(tree));
      const std::vector<EdgeId>& edges = trees.back();
      CutResult& slot = results.emplace_back();
      minoragg::Ledger& tree_ledger = tree_ledgers.emplace_back();
      const auto index = static_cast<std::int64_t>(results.size()) - 1;
      solves.spawn([&g, &edges, &slot, &tree_ledger, index] {
        UMC_OBS_SPAN_VAR_L(obs_tree, "mincut/two_respect_tree", "mincut", index);
        obs_tree.arg("pool_thread", ThreadPool::current_index());
        (void)minoragg::orient_tree(g, edges, /*root=*/0, tree_ledger);
        slot = two_respecting_mincut(g, edges, /*root=*/0, tree_ledger);
      });
    });
    solves.join();
  });
#if !defined(UMC_OBS_DISABLED)
  mincut_task_metrics().spawned.inc(stats.spawned);
  mincut_task_metrics().helped.inc(stats.helped);
  if (stats.width > 1) mincut_task_metrics().sessions.inc();
#else
  (void)stats;
#endif
  const std::size_t num_trees = results.size();
  out.num_trees = static_cast<int>(num_trees);
  for (std::size_t i = 0; i < num_trees; ++i) {
    // Sequential absorption in index order reproduces the seed's direct
    // charging: rounds sum either way, additive counters commute, and
    // "max_" counters take the same global max.
    ledger.charge_sequential(tree_ledgers[i]);
    const CutResult& r = results[i];
    if (r.value < out.value) {  // strict: ties keep the lowest tree index
      out.value = r.value;
      out.e = r.e;
      out.f = r.f;
      out.winning_tree = static_cast<int>(i);
    }
  }
  UMC_ASSERT_MSG(out.value < kInfWeight, "a packing always yields at least one cut");
  return out;
}

ExactMinCutResult exact_mincut_resumable(const WeightedGraph& g, Rng& rng,
                                         minoragg::Ledger& ledger, const PackingConfig& config,
                                         int num_threads, SolveCheckpoint& ckpt,
                                         const CrashHook& hook) {
  UMC_ASSERT(g.n() >= 2);
  UMC_OBS_SPAN_VAR_L(obs_exact, "mincut/exact_resumable", "mincut", ledger.rounds());
  obs_exact.arg("n", g.n());
  obs_exact.arg("committed_solves", ckpt.committed_solves());
  ExactMinCutResult out;

  if (g.n() == 2) {
    // Single possible cut; nothing worth journaling.
    ledger.charge(1);
    out.value = g.total_weight();
    out.num_trees = 0;
    return out;
  }

  // Same pipelined session as exact_mincut, with two journal taps: trees
  // whose solve already committed are filled from the journal instead of
  // spawning, and every live solve commits its (result, ledger) under the
  // checkpoint mutex before finishing. A producer crash is captured so the
  // already-spawned solves still run — and commit — before it propagates;
  // a solve crash is captured by the session (which drains, then rethrows).
  std::deque<std::vector<EdgeId>> trees;
  std::deque<CutResult> results;
  std::deque<minoragg::Ledger> tree_ledgers;
  std::mutex ckpt_mu;
  std::exception_ptr producer_crash;
  const int width = std::max(1, num_threads);
  const TaskGraph::Stats stats = TaskGraph::session(width, [&] {
    TaskGroup solves;
    try {
      (void)tree_packing_resumable(
          g, rng, ledger, config,
          [&](std::vector<EdgeId> tree) {
            trees.push_back(std::move(tree));
            const std::vector<EdgeId>& edges = trees.back();
            CutResult& slot = results.emplace_back();
            minoragg::Ledger& tree_ledger = tree_ledgers.emplace_back();
            const auto index = static_cast<std::int64_t>(results.size()) - 1;
            {
              const std::lock_guard<std::mutex> lock(ckpt_mu);
              ckpt.note_tree_count(results.size());
              if (ckpt.solved_mask[static_cast<std::size_t>(index)] != 0) {
                slot = ckpt.solved[static_cast<std::size_t>(index)];
                tree_ledger = ckpt.solve_charges[static_cast<std::size_t>(index)];
                ++ckpt.replayed_units;
                return;  // journal replay: no solve task
              }
            }
            solves.spawn([&g, &edges, &slot, &tree_ledger, index, &ckpt, &ckpt_mu, &hook] {
              UMC_OBS_SPAN_VAR_L(obs_tree, "mincut/two_respect_tree", "mincut", index);
              obs_tree.arg("pool_thread", ThreadPool::current_index());
              (void)minoragg::orient_tree(g, edges, /*root=*/0, tree_ledger);
              slot = two_respecting_mincut(g, edges, /*root=*/0, tree_ledger);
              if (hook) hook(SolvePhase::kTreeSolve, index);
              const std::lock_guard<std::mutex> lock(ckpt_mu);
              ckpt.solved[static_cast<std::size_t>(index)] = slot;
              ckpt.solve_charges[static_cast<std::size_t>(index)] = tree_ledger;
              ckpt.solved_mask[static_cast<std::size_t>(index)] = 1;
            });
          },
          ckpt.packing, hook);
    } catch (...) {
      producer_crash = std::current_exception();
    }
    solves.join();
  });
#if !defined(UMC_OBS_DISABLED)
  mincut_task_metrics().spawned.inc(stats.spawned);
  mincut_task_metrics().helped.inc(stats.helped);
  if (stats.width > 1) mincut_task_metrics().sessions.inc();
#else
  (void)stats;
#endif
  if (producer_crash) std::rethrow_exception(producer_crash);

  const std::size_t num_trees = results.size();
  out.num_trees = static_cast<int>(num_trees);
  for (std::size_t i = 0; i < num_trees; ++i) {
    ledger.charge_sequential(tree_ledgers[i]);
    const CutResult& r = results[i];
    if (r.value < out.value) {  // strict: ties keep the lowest tree index
      out.value = r.value;
      out.e = r.e;
      out.f = r.f;
      out.winning_tree = static_cast<int>(i);
    }
  }
  UMC_ASSERT_MSG(out.value < kInfWeight, "a packing always yields at least one cut");
  return out;
}

std::string MinCutDiagnosis::to_string() const {
  std::ostringstream os;
  os << (used_fallback ? "degraded to gather baseline" : "primary path healthy");
  for (const std::string& f : failures) os << "; " << f;
  return os.str();
}

bool self_check_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("UMC_SELF_CHECK");
    return env != nullptr && (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0);
  }();
  return enabled;
}

// The guard battery against `primary`: one line per failure, empty means
// certified. Replays the packing from `seed` — the pipeline's randomness is
// only in the packing, so a same-seed replay must reproduce the winning
// tree. The replay shares the primary solve's key (same graph, same entry
// rng state, same config), so it is a PackingCache hit: the recorded trees
// stream back at output cost instead of re-running the packing iterations.
std::vector<std::string> verify_mincut_result(const WeightedGraph& g, std::uint64_t seed,
                                              const GuardConfig& config,
                                              const ExactMinCutResult& primary) {
  std::vector<std::string> failures;
  if (g.n() == 2) {
    // Single possible cut: recompute it directly.
    if (primary.value != g.total_weight())
      failures.push_back("cut-cov mismatch: reported " + std::to_string(primary.value) +
                         ", direct recount " + std::to_string(g.total_weight()));
    return failures;
  }

  // Packing respect check: the winner must name a replayable packing tree.
  Rng replay(seed);
  minoragg::Ledger scratch;
  const TreePacking packing = tree_packing(g, replay, scratch, config.packing);
  if (primary.num_trees != static_cast<int>(packing.trees.size())) {
    failures.push_back("determinism: packing replay produced " +
                       std::to_string(packing.trees.size()) + " trees, primary saw " +
                       std::to_string(primary.num_trees));
    return failures;
  }
  if (primary.winning_tree < 0 || primary.winning_tree >= primary.num_trees) {
    failures.push_back("packing respect: winning tree index " +
                       std::to_string(primary.winning_tree) + " outside [0, " +
                       std::to_string(primary.num_trees) + ")");
    return failures;
  }
  const std::vector<EdgeId>& tree =
      packing.trees[static_cast<std::size_t>(primary.winning_tree)];

  try {
    // RootedTree construction validates the spanning-tree property.
    const RootedTree t(g, tree, /*root=*/0);

    // Cut=Cov spot check: materialize the bipartition and re-sum crossings.
    if (primary.e != kNoEdge) {
      const CutWitness w = cut_witness(t, CutResult{primary.value, primary.e, primary.f});
      if (w.value != primary.value)
        failures.push_back("cut-cov mismatch: reported " + std::to_string(primary.value) +
                           ", witness crossing sum " + std::to_string(w.value));
    } else {
      failures.push_back("packing respect: no defining tree edge reported");
    }

    // Determinism self-check: the 2-respecting solver is deterministic, so
    // a re-run on the winning tree must reproduce a value no worse than the
    // reported one (equal when the winner came from this tree).
    minoragg::Ledger recheck;
    const CutResult again = two_respecting_mincut(g, tree, /*root=*/0, recheck);
    if (again.value != primary.value)
      failures.push_back("determinism: 2-respecting re-run on winning tree gave " +
                         std::to_string(again.value) + ", primary reported " +
                         std::to_string(primary.value));
  } catch (const invariant_error& e) {
    failures.push_back(std::string("packing respect: ") + e.what());
  }
  return failures;
}

GuardedMinCutResult exact_mincut_guarded(const WeightedGraph& g, std::uint64_t seed,
                                         minoragg::Ledger& ledger, const GuardConfig& config) {
  GuardedMinCutResult out;
  UMC_OBS_SPAN_VAR_L(obs_guarded, "mincut/exact_guarded", "mincut", ledger.rounds());
  const bool check = config.self_check || self_check_enabled();
  try {
    Rng rng(seed);
    out.primary = exact_mincut(g, rng, ledger, config.packing);
    if (config.inject_result_corruption) {
      // Drill mode: silently corrupt the primary answer. Only the guard
      // battery can notice — exercising detection, not just degradation.
      out.primary.value += 1;
    }
    if (check) out.diagnosis.failures = verify_mincut_result(g, seed, config, out.primary);
  } catch (const invariant_error& e) {
    out.diagnosis.failures.push_back(std::string("invariant: ") + e.what());
  }

  if (out.diagnosis.failures.empty()) {
    out.value = out.primary.value;
    return out;
  }

  // Degrade: serve the Θ(D + m) gather baseline instead of aborting.
  UMC_OBS_SPAN_VAR_L(obs_fb, "mincut/gather_fallback", "mincut", ledger.rounds());
  out.diagnosis.used_fallback = true;
  const congest::GatherBaselineResult fb = congest::gather_exact_mincut(g, /*root=*/0);
  out.value = fb.min_cut_value;
  out.fallback_rounds = fb.rounds_used;
  ledger.charge(fb.rounds_used);  // honest accounting: the fallback is paid for
  ledger.bump("selfcheck_fallbacks");
  return out;
}

}  // namespace umc::mincut
