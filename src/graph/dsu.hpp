#pragma once

// Disjoint-set union (union by size + path halving).
//
// Used pervasively: supernode identification after Minor-Aggregation
// contractions, Kruskal spanning trees, Karger contraction, minor building.

#include <numeric>
#include <vector>

#include "graph/graph.hpp"

namespace umc {

class Dsu {
 public:
  explicit Dsu(NodeId n) : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  [[nodiscard]] NodeId find(NodeId x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  /// Returns true iff x and y were in different components.
  bool unite(NodeId x, NodeId y) {
    x = find(x);
    y = find(y);
    if (x == y) return false;
    if (size_[static_cast<std::size_t>(x)] < size_[static_cast<std::size_t>(y)]) std::swap(x, y);
    parent_[static_cast<std::size_t>(y)] = x;
    size_[static_cast<std::size_t>(x)] += size_[static_cast<std::size_t>(y)];
    --components_;
    return true;
  }

  [[nodiscard]] bool same(NodeId x, NodeId y) { return find(x) == find(y); }
  [[nodiscard]] NodeId component_size(NodeId x) { return size_[static_cast<std::size_t>(find(x))]; }

  [[nodiscard]] NodeId num_components() const {
    return static_cast<NodeId>(parent_.size()) + components_;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
  NodeId components_ = 0;  // delta vs. n: decremented on every merge
};

}  // namespace umc
