#include "congest/compiled_network.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace umc::congest {

CompiledRoundResult execute_ma_round(
    CongestNetwork& net, minoragg::RoundEngine& engine, const std::vector<bool>& contract,
    std::span<const std::int64_t> node_input, PartwiseOp consensus_op,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t,
                                                              std::int64_t)>& edge_values,
    PartwiseOp aggregate_op) {
  const WeightedGraph& g = net.graph();
  UMC_ASSERT(&engine.graph() == &g);
  UMC_ASSERT(static_cast<EdgeId>(contract.size()) == g.m());
  UMC_ASSERT(static_cast<NodeId>(node_input.size()) == g.n());
  const std::int64_t start = net.rounds();
  // Logical clock: the CONGEST round this compiled MA round starts at; the
  // nested "congest/round" spans carry the per-round numbers.
  UMC_OBS_SPAN_VAR_L(obs_ma, "compiled/ma_round", "compiled", start);
  obs_ma.arg("n", g.n());

  // Parts of the contraction (bookkeeping only — each node knows its
  // incident contracted edges, which is what PA consumes). The engine's
  // cached plan provides exactly the dense first-seen part numbering the
  // seed derived from a per-round DSU.
  const minoragg::RoundPlan& plan = engine.plan(contract);
  const std::span<const int> part(plan.group_of.data(), plan.group_of.size());

  // Partition state for the three part-wise aggregations below, hung off the
  // cached plan: rebuilt or LRU-evicted plans drop it, so it is invalidated
  // exactly when the plan key (= the part vector's provenance) changes.
  // Within one MA round the three PAs share it; across Borůvka iterations
  // with unchanged contraction it persists.
  PartwiseCache* pcache = nullptr;
  if (net.wire_config().partwise_cache) {
    if (plan.congest_cache == nullptr) plan.congest_cache = std::make_shared<PartwiseCache>();
    pcache = static_cast<PartwiseCache*>(plan.congest_cache.get());
  }

  CompiledRoundResult out;

  // Step 1: leader election — min-fold of node ids per part. (The plan
  // already knows each part's smallest id; the PA is the message traffic
  // that realizes it, and the fold result must agree.)
  {
    UMC_OBS_SPAN_VAR_L(obs_phase, "compiled/leader_election", "compiled", net.rounds());
    std::vector<std::int64_t> ids(static_cast<std::size_t>(g.n()));
    for (NodeId v = 0; v < g.n(); ++v) ids[static_cast<std::size_t>(v)] = v;
    const PartwiseResult leaders = partwise_aggregate(net, part, ids, PartwiseOp::kMin, pcache);
    out.supernode.resize(static_cast<std::size_t>(g.n()));
    for (NodeId v = 0; v < g.n(); ++v)
      out.supernode[static_cast<std::size_t>(v)] =
          static_cast<NodeId>(leaders.value[static_cast<std::size_t>(v)]);
    UMC_ASSERT(out.supernode == plan.supernode);
  }

  // Step 2: consensus.
  {
    UMC_OBS_SPAN_VAR_L(obs_phase, "compiled/consensus", "compiled", net.rounds());
    const PartwiseResult consensus =
        partwise_aggregate(net, part, node_input, consensus_op, pcache);
    out.consensus = consensus.value;
  }

  // Step 3: y-exchange — one real CONGEST round over every edge (CSR view:
  // one contiguous scan).
  std::vector<std::int64_t> y_other(static_cast<std::size_t>(g.m()) * 2, 0);
  {
    UMC_OBS_SPAN_VAR_L(obs_phase, "compiled/y_exchange", "compiled", net.rounds());
    const CsrAdjacency& csr = g.csr();
    for (NodeId v = 0; v < g.n(); ++v)
      for (const AdjEntry& a : csr.row(v))
        net.send(v, a.edge, out.consensus[static_cast<std::size_t>(v)]);
    net.end_round();
    // Slot reads: u's send occupies wire slot 2e+0 and is the y held at v
    // (y_other[2e+1]); symmetrically for v's send. A slot empty under
    // faults leaves y_other at 0, exactly like the seed's missing message.
    for (EdgeId e = 0; e < g.m(); ++e) {
      const std::size_t s = static_cast<std::size_t>(e) * 2;
      if (net.slot_has(s)) y_other[s + 1] = net.slot_payload(s);
      if (net.slot_has(s + 1)) y_other[s] = net.slot_payload(s + 1);
    }
  }

  // Step 4: local z-fold per node, then one part-wise aggregation.
  {
    UMC_OBS_SPAN_VAR_L(obs_phase, "compiled/aggregation", "compiled", net.rounds());
    const auto identity = [aggregate_op]() {
      return aggregate_op == PartwiseOp::kSum ? 0 : std::numeric_limits<std::int64_t>::max();
    };
    const auto fold = [aggregate_op](std::int64_t a, std::int64_t b) {
      return aggregate_op == PartwiseOp::kSum ? a + b : std::min(a, b);
    };
    std::vector<std::int64_t> partial(static_cast<std::size_t>(g.n()), identity());
    // The plan's surviving-edge list already excludes minor self-loops.
    for (const minoragg::RoundPlan::MinorEdge& me : plan.edges) {
      // Each endpoint evaluates the edge's z for its side: it holds its own
      // y and the y it RECEIVED over the edge in step 3.
      const std::size_t e = static_cast<std::size_t>(me.e);
      const std::int64_t yu = y_other[e * 2 + 1];  // u's y, held at v
      const std::int64_t yv = y_other[e * 2 + 0];  // v's y, held at u
      UMC_ASSERT(yu == out.consensus[static_cast<std::size_t>(me.u)]);
      UMC_ASSERT(yv == out.consensus[static_cast<std::size_t>(me.v)]);
      const auto [zu, zv] = edge_values(me.e, yu, yv);
      partial[static_cast<std::size_t>(me.u)] = fold(partial[static_cast<std::size_t>(me.u)], zu);
      partial[static_cast<std::size_t>(me.v)] = fold(partial[static_cast<std::size_t>(me.v)], zv);
    }
    const PartwiseResult agg = partwise_aggregate(net, part, partial, aggregate_op, pcache);
    out.aggregate = agg.value;
  }

  out.congest_rounds = net.rounds() - start;
  return out;
}

CompiledRoundResult execute_ma_round(
    CongestNetwork& net, const std::vector<bool>& contract,
    std::span<const std::int64_t> node_input, PartwiseOp consensus_op,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t,
                                                              std::int64_t)>& edge_values,
    PartwiseOp aggregate_op) {
  minoragg::RoundEngine engine(net.graph());
  return execute_ma_round(net, engine, contract, node_input, consensus_op, edge_values,
                          aggregate_op);
}

namespace {

/// Journal one committed MA round: each node appends the ids of its NEWLY
/// selected incident edges (the delta; see NodeCheckpointStore on why the
/// cumulative journal is the full snapshot for Borůvka).
void checkpoint_delta(NodeCheckpointStore& ckpt, const WeightedGraph& g,
                      std::span<const EdgeId> fresh, std::int64_t ma_round) {
  for (const EdgeId e : fresh) {
    const Edge& ed = g.edge(e);
    ckpt.append(ed.u, e);
    ckpt.append(ed.v, e);
  }
  ckpt.commit(ma_round);
}

/// Rebuild the global selected set as the union of all node journals — the
/// recovery path a crash-restarted node takes.
[[nodiscard]] std::vector<bool> restore_selected(const NodeCheckpointStore& ckpt,
                                                 const WeightedGraph& g) {
  std::vector<bool> selected(static_cast<std::size_t>(g.m()), false);
  for (NodeId v = 0; v < g.n(); ++v)
    for (const std::int64_t e : ckpt.words(v)) selected[static_cast<std::size_t>(e)] = true;
  return selected;
}

}  // namespace

CompiledBoruvkaResult compiled_boruvka(CongestNetwork& net,
                                       std::span<const std::int64_t> cost) {
  const WeightedGraph& g = net.graph();
  UMC_ASSERT(static_cast<EdgeId>(cost.size()) == g.m());
  // Pack (cost, edge id) into one CONGEST word: cost in the high bits, id
  // in the low 31. Requires cost < 2^32 (weights are poly(n)).
  for (const std::int64_t c : cost) UMC_ASSERT(0 <= c && c < (1LL << 32));
  const auto pack = [](std::int64_t c, EdgeId e) { return (c << 31) | e; };
  const auto unpack_edge = [](std::int64_t key) {
    return static_cast<EdgeId>(key & ((1LL << 31) - 1));
  };

  FaultInjector* injector = net.fault_injector();
  minoragg::RoundEngine engine(g);  // one plan cache across all iterations
  const std::int64_t net_start = net.rounds();
  CompiledBoruvkaResult out;
  std::vector<bool> selected(static_cast<std::size_t>(g.m()), false);
  NodeCheckpointStore ckpt(g.n());
  if (injector != nullptr) ckpt.commit(/*ma_round=*/0);  // empty initial journal
  const std::vector<std::int64_t> zeros(static_cast<std::size_t>(g.n()), 0);
  int consecutive_rollbacks = 0;
  std::vector<NodeId> crashed;
  // Per-iteration scratch, reused: the chosen-edge list plus a dedup mark
  // per edge (reset via the list, not O(m) per round).
  std::vector<EdgeId> chosen;
  std::vector<bool> chosen_mark(static_cast<std::size_t>(g.m()), false);
  for (;;) {
    const std::int64_t round_start = net.rounds();
    std::optional<CompiledRoundResult> round;
    try {
      round = execute_ma_round(
          net, engine, selected, zeros, PartwiseOp::kSum,
          [&](EdgeId e, std::int64_t, std::int64_t) {
            const std::int64_t key = pack(cost[static_cast<std::size_t>(e)], e);
            return std::pair{key, key};
          },
          PartwiseOp::kMin);
    } catch (const invariant_error&) {
      // A mid-round invariant failure on a faulty network is expected when
      // a node crash-stopped and its traffic vanished — recover below. On a
      // clean network (or with no crash in this window) it is a real bug.
      crashed.clear();
      if (injector != nullptr) injector->crashed_between(round_start, net.rounds(), crashed);
      if (crashed.empty()) throw;
    }
    if (round.has_value() && injector != nullptr) {
      crashed.clear();
      injector->crashed_between(round_start, net.rounds(), crashed);
    }
    if (injector != nullptr && !crashed.empty()) {
      // Crash-stop during this MA round: the affected nodes lost their
      // volatile round state. Discard the round, restore every node from
      // its last consistent checkpoint, and re-execute; the wasted rounds
      // stay on the counter (that IS the measured cost of the crash). The
      // round counter advanced, so the retry sees a fresh fault schedule.
      ++out.rollbacks;
      UMC_OBS_SPAN_VAR_L(obs_rb, "compiled/rollback", "compiled", net.rounds());
      obs_rb.arg("crashed", static_cast<std::int64_t>(crashed.size()));
      out.recoveries += static_cast<int>(crashed.size());
      for (const NodeId v : crashed) injector->note_recovery(net.rounds(), v);
      selected = restore_selected(ckpt, g);
      UMC_ASSERT_MSG(++consecutive_rollbacks <= 64,
                     "crash rate too high: no crash-free MA round in 64 attempts");
      continue;
    }
    consecutive_rollbacks = 0;
    ++out.ma_rounds;

    chosen.clear();
    bool single = true;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (round->supernode[static_cast<std::size_t>(v)] != round->supernode[0]) single = false;
      const std::int64_t key = round->aggregate[static_cast<std::size_t>(v)];
      if (key == std::numeric_limits<std::int64_t>::max()) continue;
      const EdgeId e = unpack_edge(key);
      UMC_ASSERT_MSG(e >= 0 && static_cast<std::size_t>(e) < chosen_mark.size(),
                     "aggregate fold yielded an out-of-range edge id");
      if (chosen_mark[static_cast<std::size_t>(e)]) continue;
      chosen_mark[static_cast<std::size_t>(e)] = true;
      chosen.push_back(e);
    }
    if (single) break;
    UMC_ASSERT_MSG(!chosen.empty(), "compiled boruvka requires a connected graph");
    // Ascending order, matching the seed's std::set iteration (deterministic
    // journal order for the checkpoint delta below).
    std::sort(chosen.begin(), chosen.end());
    UMC_ASSERT(static_cast<std::size_t>(chosen.back()) < chosen_mark.size());
    for (const EdgeId e : chosen) {
      selected[static_cast<std::size_t>(e)] = true;
      chosen_mark[static_cast<std::size_t>(e)] = false;
    }
    if (injector != nullptr) checkpoint_delta(ckpt, g, chosen, out.ma_rounds);
  }
  for (EdgeId e = 0; e < g.m(); ++e)
    if (selected[static_cast<std::size_t>(e)]) out.tree.push_back(e);
  out.congest_rounds = net.rounds() - net_start;
  return out;
}

CompiledBoruvkaResult compiled_boruvka(const WeightedGraph& g,
                                       std::span<const std::int64_t> cost) {
  CongestNetwork net(g);
  return compiled_boruvka(net, cost);
}

}  // namespace umc::congest
