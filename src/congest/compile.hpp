#pragma once

// Theorem 17: compiling Minor-Aggregation round counts down to CONGEST.
//
// One Minor-Aggregation round costs O(1) part-wise aggregations, so
//   CONGEST rounds ≈ MA rounds × PA(G),
// where PA(G) is the part-wise-aggregation cost on G. Two compile targets:
//   * general graphs — PA measured by actually running the O(D+√n)
//     part-wise aggregation of congest/partwise on the canonical √n-carve
//     partition (deterministic, [11]/[19]);
//   * excluded-minor graphs — quality-Õ(D) shortcuts exist and are
//     constructible deterministically [12, 19]; constructing them is an
//     orthogonal line of work the paper explicitly assumes, so this target
//     uses the cost model PA_em = (D + 1) · ⌈log2 n⌉ (documented in
//     DESIGN.md as a substitution).

#include <cstdint>

#include "graph/graph.hpp"
#include "minoragg/ledger.hpp"

namespace umc::congest {

struct CompileCost {
  std::int64_t ma_rounds = 0;
  std::int64_t pa_rounds_general = 0;   // measured on this graph
  std::int64_t pa_rounds_excluded_minor = 0;  // (D+1) * ceil(log2 n) model
  /// Theorem 1 bullet 3 (well-connected, mixing time <= 2^O(√log n)):
  /// per-round cost model 2^(2·√log2 n) [14, 15]. Meaningful only for
  /// graphs that ARE well connected (check expansion first).
  std::int64_t pa_rounds_well_connected = 0;
  int diameter = 0;                     // 2-approximate hop diameter
  int n = 0;

  [[nodiscard]] std::int64_t congest_rounds_general() const {
    return ma_rounds * pa_rounds_general;
  }
  [[nodiscard]] std::int64_t congest_rounds_excluded_minor() const {
    return ma_rounds * pa_rounds_excluded_minor;
  }
  [[nodiscard]] std::int64_t congest_rounds_well_connected() const {
    return ma_rounds * pa_rounds_well_connected;
  }
};

/// Measures PA(G) (one real part-wise aggregation on a √n-carve partition)
/// and combines it with an algorithm's Minor-Aggregation round count.
[[nodiscard]] CompileCost measure_compile_cost(const WeightedGraph& g,
                                               const minoragg::Ledger& ledger,
                                               std::uint64_t seed = 0);

/// Empirical shortcut-quality proxy for the supported-CONGEST target
/// (Theorem 1, bullet 2: Õ(SQ(G)) rounds when the topology is known):
/// the worst measured part-wise-aggregation cost over `trials` random
/// carve partitions plus the global part. A lower bound on the true SQ-ish
/// constant the Õ(SQ) compile would pay; exact SQ computation is NP-ish
/// and out of scope.
[[nodiscard]] std::int64_t estimate_shortcut_quality(const WeightedGraph& g, int trials = 4,
                                                     std::uint64_t seed = 0);

}  // namespace umc::congest
