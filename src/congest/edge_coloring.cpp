#include "congest/edge_coloring.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace umc::congest {

EdgeColoring deterministic_edge_coloring(const WeightedGraph& g) {
  EdgeColoring out;
  out.color.assign(static_cast<std::size_t>(g.m()), -1);
  for (NodeId v = 0; v < g.n(); ++v) out.max_degree = std::max(out.max_degree, g.degree(v));

  for (EdgeId e = 0; e < g.m(); ++e) {
    // mex over colors already used at either endpoint.
    std::vector<bool> used(static_cast<std::size_t>(2 * out.max_degree), false);
    const Edge& ed = g.edge(e);
    for (const NodeId x : {ed.u, ed.v}) {
      for (const AdjEntry& a : g.adj(x)) {
        const int c = out.color[static_cast<std::size_t>(a.edge)];
        if (c >= 0) used[static_cast<std::size_t>(c)] = true;
      }
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    out.color[static_cast<std::size_t>(e)] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  UMC_ASSERT_MSG(out.num_colors <= std::max(1, 2 * out.max_degree - 1),
                 "greedy edge coloring uses at most 2Δ-1 colors");

  out.congest_rounds =
      out.max_degree + log_star(static_cast<std::uint64_t>(std::max<NodeId>(2, g.n()))) + 1;
  return out;
}

}  // namespace umc::congest
