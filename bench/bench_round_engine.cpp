// Round-execution engine microbench: repeated identical-pattern rounds on a
// 256x256 grid — the workload shape of fixed-schedule drivers (spanning
// tree, HLD chains, Theorem 14), where the contraction pattern recurs for
// thousands of consecutive rounds.
//
//   * Uncached: the seed-style round — per-round DSU + minor-edge scan and a
//     std::function edge callback, rebuilt from scratch every round.
//   * Cached: Network/RoundEngine — the plan is built once, every later
//     round replays it from the LRU cache with scratch-arena buffers and an
//     inlined callback. threads=1 isolates the caching win; threadsN adds
//     the chunk-parallel folds (bit-identical by construction).
//
// All variants export the same "checksum" counter (FNV over consensus and
// aggregate vectors) and "ma_rounds" — the engine changes wall time ONLY,
// never outputs or round accounting.
//
// Run:
//   ./bench_round_engine --benchmark_out=BENCH_round_engine.json
//       --benchmark_out_format=json

#include <functional>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "graph/dsu.hpp"
#include "minoragg/network.hpp"
#include "util/thread_pool.hpp"

namespace umc {
namespace {

constexpr NodeId kSide = 256;
constexpr int kRounds = 1000;

// Dense contraction, the density regime of the drivers that actually replay
// patterns (spanning-tree and HLD-chain schedules contract most edges).
std::vector<bool> fixed_pattern(const WeightedGraph& g) {
  Rng rng(0x70A7);
  std::vector<bool> c(static_cast<std::size_t>(g.m()));
  for (std::size_t e = 0; e < c.size(); ++e) c[e] = rng.next_bool(0.85);
  return c;
}

std::vector<std::int64_t> fixed_input(const WeightedGraph& g) {
  Rng rng(0x1297);
  std::vector<std::int64_t> x(static_cast<std::size_t>(g.n()));
  for (auto& v : x) v = rng.next_in(0, 1000);
  return x;
}

std::uint64_t fnv(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v);
  return h * 0x100000001b3ULL;
}

std::uint64_t checksum(const minoragg::RoundResult<std::int64_t, std::int64_t>& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::int64_t v : r.consensus) h = fnv(h, v);
  for (const std::int64_t v : r.aggregate) h = fnv(h, v);
  for (const NodeId s : r.supernode) h = fnv(h, s);
  return h;
}

std::pair<std::int64_t, std::int64_t> edge_z(const WeightedGraph& g, EdgeId e, std::int64_t yu,
                                             std::int64_t yv) {
  const std::int64_t w = g.edge(e).w;
  return {yu + w, yv - w + 3 * e};
}

/// The seed's round(), replicated verbatim: supernodes() = DSU pass + two
/// full find() sweeps; folds into n-sized tables indexed by supernode id;
/// type-erased edge callback; fresh buffers every round.
minoragg::RoundResult<std::int64_t, std::int64_t> seed_style_round(
    const WeightedGraph& g, const std::vector<bool>& contract,
    const std::vector<std::int64_t>& input,
    const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t, std::int64_t)>&
        edge_values,
    minoragg::Ledger& ledger) {
  const std::size_t n = static_cast<std::size_t>(g.n());

  minoragg::RoundResult<std::int64_t, std::int64_t> out;
  {
    Dsu dsu(g.n());
    for (EdgeId e = 0; e < g.m(); ++e)
      if (contract[static_cast<std::size_t>(e)]) dsu.unite(g.edge(e).u, g.edge(e).v);
    std::vector<NodeId> smallest(n, kNoNode);
    for (NodeId v = 0; v < g.n(); ++v) {
      NodeId& slot = smallest[static_cast<std::size_t>(dsu.find(v))];
      if (slot == kNoNode) slot = v;
    }
    out.supernode.resize(n);
    for (NodeId v = 0; v < g.n(); ++v)
      out.supernode[static_cast<std::size_t>(v)] = smallest[static_cast<std::size_t>(dsu.find(v))];
  }
  std::vector<std::int64_t> y(n, SumAgg::identity());
  for (NodeId v = 0; v < g.n(); ++v)
    y[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])] +=
        input[static_cast<std::size_t>(v)];
  out.consensus.resize(n);
  for (NodeId v = 0; v < g.n(); ++v)
    out.consensus[static_cast<std::size_t>(v)] =
        y[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];
  std::vector<std::int64_t> z(n, MinAgg::identity());
  for (EdgeId e = 0; e < g.m(); ++e) {
    const Edge& ed = g.edge(e);
    const NodeId su = out.supernode[static_cast<std::size_t>(ed.u)];
    const NodeId sv = out.supernode[static_cast<std::size_t>(ed.v)];
    if (su == sv) continue;
    const auto [zu, zv] = edge_values(e, out.consensus[static_cast<std::size_t>(ed.u)],
                                      out.consensus[static_cast<std::size_t>(ed.v)]);
    z[static_cast<std::size_t>(su)] = std::min(z[static_cast<std::size_t>(su)], zu);
    z[static_cast<std::size_t>(sv)] = std::min(z[static_cast<std::size_t>(sv)], zv);
  }
  out.aggregate.resize(n);
  for (NodeId v = 0; v < g.n(); ++v)
    out.aggregate[static_cast<std::size_t>(v)] =
        z[static_cast<std::size_t>(out.supernode[static_cast<std::size_t>(v)])];
  ledger.charge(1);
  return out;
}

void BM_RepeatedRounds_SeedStyle(benchmark::State& state) {
  const WeightedGraph g = benchutil::weighted_grid(kSide, 7);
  const std::vector<bool> contract = fixed_pattern(g);
  const std::vector<std::int64_t> input = fixed_input(g);
  const std::function<std::pair<std::int64_t, std::int64_t>(EdgeId, std::int64_t, std::int64_t)>
      fn = [&g](EdgeId e, std::int64_t yu, std::int64_t yv) { return edge_z(g, e, yu, yv); };
  minoragg::Ledger ledger;
  minoragg::RoundResult<std::int64_t, std::int64_t> last;
  for (auto _ : state) {
    auto out = seed_style_round(g, contract, input, fn, ledger);
    benchmark::DoNotOptimize(out.aggregate.data());
    last = std::move(out);
  }
  benchutil::export_ledger(state, ledger);
  state.counters["checksum"] = static_cast<double>(checksum(last) % (1u << 30));
}

void BM_RepeatedRounds_Engine(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const WeightedGraph g = benchutil::weighted_grid(kSide, 7);
  const std::vector<bool> contract = fixed_pattern(g);
  const std::vector<std::int64_t> input = fixed_input(g);
  minoragg::Ledger ledger;
  const minoragg::Network net(g, ledger);
  net.set_threads(threads);
  minoragg::RoundResult<std::int64_t, std::int64_t> last;
  for (auto _ : state) {
    auto out = net.round<SumAgg, MinAgg>(
        contract, std::span<const std::int64_t>(input),
        [&g](EdgeId e, std::int64_t yu, std::int64_t yv) { return edge_z(g, e, yu, yv); });
    benchmark::DoNotOptimize(out.aggregate.data());
    last = std::move(out);
  }
  benchutil::export_ledger(state, ledger);
  state.counters["checksum"] = static_cast<double>(checksum(last) % (1u << 30));
  state.counters["threads"] = threads;
  state.counters["plan_cache_hits"] = static_cast<double>(net.engine().plan_cache_hits());
}

BENCHMARK(BM_RepeatedRounds_SeedStyle)->Iterations(kRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RepeatedRounds_Engine)
    ->Arg(1)
    ->Arg(4)  // checksum must match /1 exactly — determinism under parallel folds
    ->Iterations(kRounds)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace umc
