// Tests for the Minor-Aggregation simulator (Definition 9) and the
// virtual-node extension (Section 4.1: Theorem 14 accounting, Lemma 15).

#include <gtest/gtest.h>

#include <map>

#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/minors.hpp"
#include "minoragg/boruvka.hpp"
#include "tree/spanning.hpp"
#include "minoragg/ledger.hpp"
#include "minoragg/network.hpp"
#include "minoragg/virtual_graph.hpp"
#include "util/rng.hpp"

namespace umc::minoragg {
namespace {

TEST(Ledger, SequentialAndParallelComposition) {
  Ledger l;
  l.charge(3);
  EXPECT_EQ(l.rounds(), 3);
  Ledger a, b;
  a.charge(5);
  a.bump("x", 2);
  b.charge(9);
  b.bump("x", 7);
  const std::vector<Ledger> children = {a, b};
  l.charge_parallel(children);
  EXPECT_EQ(l.rounds(), 3 + 9);       // max of children round counts
  EXPECT_EQ(l.counter("x"), 9);       // additive counters sum up
  l.charge_sequential(a);
  EXPECT_EQ(l.rounds(), 12 + 5);
  EXPECT_EQ(l.counter("x"), 11);
  // "max_"-prefixed counters merge by maximum instead.
  Ledger m1, m2;
  m1.set_max("max_depth", 4);
  m2.set_max("max_depth", 2);
  m1.charge_sequential(m2);
  EXPECT_EQ(m1.counter("max_depth"), 4);
}

TEST(Ledger, CounterKindsMergeByKeyPrefix) {
  // The "max_" prefix IS the merge kind (see the ledger.hpp convention):
  // max-kind keys take the maximum, sum-kind keys add — under BOTH
  // composition rules, including a parent value already present.
  Ledger parent;
  parent.set_max("max_depth", 3);
  parent.bump("work", 10);

  Ledger a, b;
  a.charge(2);
  a.set_max("max_depth", 7);
  a.bump("work", 1);
  b.charge(5);
  b.set_max("max_depth", 5);
  b.bump("work", 2);

  const std::vector<Ledger> children = {a, b};
  parent.charge_parallel(children);
  EXPECT_EQ(parent.rounds(), 5);               // max of {2, 5}
  EXPECT_EQ(parent.counter("max_depth"), 7);   // max of {3, 7, 5}
  EXPECT_EQ(parent.counter("work"), 13);       // 10 + 1 + 2

  parent.charge_sequential(a);
  EXPECT_EQ(parent.rounds(), 7);               // 5 + 2
  EXPECT_EQ(parent.counter("max_depth"), 7);   // max(7, 7): sequential maxes too
  EXPECT_EQ(parent.counter("work"), 14);

  // A child whose max is below the parent's must not lower it.
  Ledger low;
  low.set_max("max_depth", 1);
  parent.charge_sequential(low);
  EXPECT_EQ(parent.counter("max_depth"), 7);

  // absorb_counter is the single merge point both compositions go through.
  parent.absorb_counter("max_depth", 9);
  parent.absorb_counter("work", 6);
  EXPECT_EQ(parent.counter("max_depth"), 9);
  EXPECT_EQ(parent.counter("work"), 20);

  // Unset counters read as 0 and merge from 0.
  EXPECT_EQ(parent.counter("missing"), 0);
}

TEST(Network, ConsensusOverSupernodes) {
  // Path 0-1-2-3; contract {0,1} and {2,3}: two supernodes.
  const WeightedGraph g = path_graph(4);
  Ledger ledger;
  Network net(g, ledger);
  const std::vector<bool> contract = {true, false, true};
  const std::vector<std::int64_t> x = {1, 10, 100, 1000};
  const auto res = net.round<SumAgg, SumAgg>(
      contract, x, [](EdgeId, const std::int64_t&, const std::int64_t&) {
        return std::pair<std::int64_t, std::int64_t>{1, 1};
      });
  EXPECT_EQ(res.consensus[0], 11);
  EXPECT_EQ(res.consensus[1], 11);
  EXPECT_EQ(res.consensus[2], 1100);
  EXPECT_EQ(res.supernode[0], res.supernode[1]);
  EXPECT_NE(res.supernode[1], res.supernode[2]);
  // Single surviving minor edge contributes one z to each side.
  EXPECT_EQ(res.aggregate[0], 1);
  EXPECT_EQ(res.aggregate[3], 1);
  EXPECT_EQ(ledger.rounds(), 1);
}

TEST(Network, AggregationSkipsSelfLoops) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // parallel
  g.add_edge(1, 2);
  Ledger ledger;
  Network net(g, ledger);
  // Contract the first {0,1} edge: the second becomes a self-loop in G'.
  const std::vector<bool> contract = {true, false, false};
  const std::vector<std::int64_t> x = {0, 0, 0};
  const auto res = net.round<SumAgg, SumAgg>(
      contract, x, [](EdgeId, const std::int64_t&, const std::int64_t&) {
        return std::pair<std::int64_t, std::int64_t>{1, 1};
      });
  EXPECT_EQ(res.aggregate[0], 1);  // only the {1,2} edge survives
  EXPECT_EQ(res.aggregate[2], 1);
}

TEST(Network, AllAggregateAndPartAggregate) {
  const WeightedGraph g = cycle_graph(6);
  Ledger ledger;
  Network net(g, ledger);
  std::vector<std::int64_t> x = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(net.all_aggregate<SumAgg>(x), 21);
  // Parts: edges {0-1},{1-2} in one part and {3-4} in another.
  std::vector<bool> in_part(static_cast<std::size_t>(g.m()), false);
  in_part[0] = in_part[1] = in_part[3] = true;
  const auto parts = net.part_aggregate<SumAgg>(in_part, x);
  EXPECT_EQ(parts[0], 1 + 2 + 3);
  EXPECT_EQ(parts[2], 1 + 2 + 3);
  EXPECT_EQ(parts[3], 4 + 5);
  EXPECT_EQ(parts[5], 6);
  EXPECT_EQ(ledger.rounds(), 2);
}

TEST(Network, AllAggregateRequiresConnectivity) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  Ledger ledger;
  Network net(g, ledger);
  const std::vector<std::int64_t> x = {1, 2, 3};
  EXPECT_THROW(net.all_aggregate<SumAgg>(x), invariant_error);
}

TEST(Network, NeighborhoodAggregateSumsIncidentEdges) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  Ledger ledger;
  Network net(g, ledger);
  const auto agg = net.neighborhood_aggregate<SumAgg>([&g](EdgeId e) {
    const Weight w = g.edge(e).w;
    return std::pair<std::int64_t, std::int64_t>{w, w};
  });
  EXPECT_EQ(agg[0], 5);
  EXPECT_EQ(agg[1], 12);
  EXPECT_EQ(agg[2], 7);
}

TEST(VirtualGraph, BetaCountsVirtualNodes) {
  VirtualGraph vg = VirtualGraph::wrap(path_graph(4));
  EXPECT_EQ(vg.beta(), 0);
  const NodeId v = vg.add_virtual_node();
  vg.graph.add_edge(0, v, 3);
  vg.graph.add_edge(2, v, 4);
  EXPECT_EQ(vg.beta(), 1);
  EXPECT_EQ(vg.graph.n(), 5);
}

TEST(VirtualGraph, Theorem14SettleMultiplier) {
  Ledger outer;
  Ledger inner;
  inner.charge(10);
  settle_virtual_execution(outer, inner, 3);
  EXPECT_EQ(outer.rounds(), 10 * 4);
  EXPECT_EQ(outer.counter("max_beta"), 3);
  // beta = 0 is a plain pass-through.
  Ledger outer2, inner2;
  inner2.charge(7);
  settle_virtual_execution(outer2, inner2, 0);
  EXPECT_EQ(outer2.rounds(), 7);
}

TEST(VirtualGraph, Lemma15MergesParallelEdgesTowardSubstitute) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);  // parallel toward the node being virtualized
  g.add_edge(1, 2, 5);
  g.add_edge(2, 3, 7);
  Ledger ledger;
  const VirtualGraph vg = virtualize_node(VirtualGraph::wrap(g), 1, ledger);
  EXPECT_TRUE(vg.is_virtual[1]);
  EXPECT_EQ(vg.graph.n(), 4);
  EXPECT_EQ(vg.graph.m(), 3);  // {0,1} merged to weight 5, {1,2}, {2,3}
  Weight w01 = 0, w12 = 0;
  for (const Edge& e : vg.graph.edges()) {
    if ((e.u == 0 && e.v == 1) || (e.u == 1 && e.v == 0)) w01 += e.w;
    if ((e.u == 1 && e.v == 2) || (e.u == 2 && e.v == 1)) w12 += e.w;
  }
  EXPECT_EQ(w01, 5);
  EXPECT_EQ(w12, 5);
  EXPECT_EQ(ledger.rounds(), 2);
}

TEST(Ledger, JsonExport) {
  Ledger l;
  l.charge(7);
  l.bump("widgets", 3);
  l.set_max("max_depth", 2);
  EXPECT_EQ(l.to_json(),
            "{\"rounds\": 7, \"counters\": {\"max_depth\": 2, \"widgets\": 3}}");
}

TEST(Network, RoundAlgebraicProperties) {
  // Randomized property check of the Definition 9 semantics:
  //  (a) consensus is constant on each supernode and equals the fold of its
  //      members' inputs;
  //  (b) the aggregate is constant on each supernode;
  //  (c) with identity edge values, the aggregate is the identity.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 5 + static_cast<NodeId>(rng.next_below(30));
    WeightedGraph g = erdos_renyi_connected(n, 0.2, rng);
    std::vector<bool> contract(static_cast<std::size_t>(g.m()), false);
    for (std::size_t e = 0; e < contract.size(); ++e) contract[e] = rng.next_bool(0.4);
    std::vector<std::int64_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.next_in(-100, 100);
    Ledger ledger;
    Network net(g, ledger);
    const auto res = net.round<SumAgg, SumAgg>(
        contract, x, [](EdgeId, const std::int64_t&, const std::int64_t&) {
          return std::pair<std::int64_t, std::int64_t>{0, 0};
        });
    std::map<NodeId, std::int64_t> fold;
    for (NodeId v = 0; v < n; ++v)
      fold[res.supernode[static_cast<std::size_t>(v)]] += x[static_cast<std::size_t>(v)];
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(res.consensus[static_cast<std::size_t>(v)],
                fold[res.supernode[static_cast<std::size_t>(v)]]);
      EXPECT_EQ(res.aggregate[static_cast<std::size_t>(v)], 0);  // identity z
      // Supernode ids are the minimum contained node id.
      EXPECT_LE(res.supernode[static_cast<std::size_t>(v)], v);
    }
  }
}

TEST(Corollary10, AlgorithmsRunUnchangedOnMinors) {
  // Borůvka on a minor of G equals Borůvka run directly on the minor graph
  // — the "operate on minors" property the model grants for free.
  Rng rng(51);
  WeightedGraph g = erdos_renyi_connected(30, 0.2, rng);
  std::vector<bool> contract(static_cast<std::size_t>(g.m()), false);
  // Contract a spanning forest fragment (first few BFS-tree edges).
  int budget = 8;
  Dsu dsu(g.n());
  for (EdgeId e = 0; e < g.m() && budget > 0; ++e) {
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) {
      contract[static_cast<std::size_t>(e)] = true;
      --budget;
    }
  }
  const DerivedGraph minor = contract_edges(g, contract);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(minor.graph.m()));
  for (auto& c : cost) c = rng.next_in(1, 50);

  Ledger ledger;
  const auto tree = boruvka_mst(minor.graph, cost, ledger);
  // Kruskal reference on the same minor.
  std::vector<double> dcost(cost.begin(), cost.end());
  const auto ref = kruskal_mst(minor.graph, dcost);
  std::int64_t tw = 0, rw = 0;
  for (const EdgeId e : tree) tw += cost[static_cast<std::size_t>(e)];
  for (const EdgeId e : ref) rw += cost[static_cast<std::size_t>(e)];
  EXPECT_EQ(tw, rw);
}

}  // namespace
}  // namespace umc::minoragg
