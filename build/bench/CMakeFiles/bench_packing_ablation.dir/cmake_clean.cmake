file(REMOVE_RECURSE
  "CMakeFiles/bench_packing_ablation.dir/bench_packing_ablation.cpp.o"
  "CMakeFiles/bench_packing_ablation.dir/bench_packing_ablation.cpp.o.d"
  "bench_packing_ablation"
  "bench_packing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
