#include "util/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace umc {

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::configured_threads() {
  static const int value = [] {
    int t = 0;
    if (const char* env = std::getenv("UMC_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) t = static_cast<int>(parsed);
    }
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    if (t <= 0) t = 1;
    return t > 64 ? 64 : t;
  }();
  return value;
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int want) {
  // Caller holds mu_.
  while (static_cast<int>(threads_.size()) < want) {
    const int id = static_cast<int>(threads_.size());
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

namespace {
// Set while a thread executes a pool job body. Detects nested run() calls,
// which would deadlock on run_mu_ instead of tripping a state assert.
thread_local bool tls_in_pool_job = false;
// Depth of SequentialScope guards on this thread; > 0 forces run() inline.
thread_local int tls_sequential_depth = 0;
// 0 on non-worker threads, worker id + 1 on pool workers.
thread_local int tls_pool_index = 0;
}  // namespace

ThreadPool::SequentialScope::SequentialScope() { ++tls_sequential_depth; }

ThreadPool::SequentialScope::~SequentialScope() { --tls_sequential_depth; }

int ThreadPool::current_index() { return tls_pool_index; }

void ThreadPool::drain(std::uint64_t gen) {
  for (;;) {
    std::size_t i;
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A worker can stall between waking and arriving here; by then its
      // generation may have completed and a newer run() begun. Re-check the
      // generation at every pop (and re-read job_ under the same lock) so a
      // stale worker never executes a dead callable or steals the new
      // generation's indices.
      if (generation_ != gen || next_ >= total_) return;
      i = next_++;
      job = job_;
    }
    tls_in_pool_job = true;
    (*job)(i);
    tls_in_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Between the pop and this decrement, run(gen) is still blocked on
      // remaining_ > 0, so generation_ cannot have advanced: the decrement
      // always targets our own generation.
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(int id) {
  tls_pool_index = id + 1;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || (generation_ != seen && id < allowed_workers_); });
      if (stop_) return;
      seen = generation_;
    }
    drain(seen);
  }
}

void ThreadPool::run(std::size_t count, int width,
                     const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (width <= 1 || count == 1 || tls_sequential_depth > 0) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  UMC_ASSERT_MSG(!tls_in_pool_job, "ThreadPool::run must not be nested");
  // Serializes distinct submitting threads (e.g. two Networks driven from
  // different host threads sharing global()): one run owns the generation
  // state at a time; the next submitter blocks here until it is released.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    UMC_ASSERT_MSG(job_ == nullptr, "generation state leaked from a previous run");
    ensure_workers(width - 1);
    job_ = &job;
    next_ = 0;
    total_ = count;
    remaining_ = count;
    allowed_workers_ = width - 1;
    gen = ++generation_;
  }
  work_cv_.notify_all();
  drain(gen);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    allowed_workers_ = 0;
  }
}

// ---------------------------------------------------------------------------
// TaskGraph sessions.

struct TaskSessionTask {
  std::function<void()> fn;
  TaskGroup* group = nullptr;  // null for the session root
  bool claimed = false;
};

struct TaskSession {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<TaskSessionTask> tasks;       // stable addresses; never shrunk
  std::deque<TaskSessionTask*> run_queue;  // unclaimed tasks, spawn order
  std::size_t unfinished = 0;              // queued or running tasks
  std::int64_t spawned = 0;
  std::int64_t helped = 0;
  std::exception_ptr error;  // first task exception; rethrown by session()

  /// Pops queue entries until an unclaimed task is found and claims it.
  /// Caller holds mu. Claimed entries linger in the OTHER queue that also
  /// references them; they are skipped lazily there.
  TaskSessionTask* claim_locked(std::deque<TaskSessionTask*>& queue) {
    while (!queue.empty()) {
      TaskSessionTask* t = queue.front();
      queue.pop_front();
      if (!t->claimed) {
        t->claimed = true;
        return t;
      }
    }
    return nullptr;
  }

  /// Runs a claimed task (caller must NOT hold mu) and records completion.
  /// Task exceptions are captured — the session must keep draining so that
  /// joins elsewhere cannot hang on a task that will never finish.
  void execute(TaskSessionTask* t) {
    try {
      t->fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      t->fn = nullptr;  // release the closure's captures eagerly
      if (t->group != nullptr) --t->group->outstanding_;
      --unfinished;
    }
    cv.notify_all();
  }
};

namespace {
thread_local TaskSession* tls_task_session = nullptr;

/// One session-worker pool job: claim-and-execute until the session drains.
/// All width jobs run this same loop; the session opener is one of them.
void session_worker(TaskSession& s) {
  ThreadPool::SequentialScope sequential;  // inner run() calls degrade inline
  TaskSession* const prev = tls_task_session;
  tls_task_session = &s;
  for (;;) {
    TaskSessionTask* t = nullptr;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      for (;;) {
        t = s.claim_locked(s.run_queue);
        if (t != nullptr) break;
        if (s.unfinished == 0) {
          tls_task_session = prev;
          return;
        }
        s.cv.wait(lock);
      }
    }
    s.execute(t);
  }
}
}  // namespace

TaskGraph::Stats TaskGraph::session(int width, const std::function<void()>& root) {
  Stats stats;
  stats.width = width < 1 ? 1 : width;
  if (stats.width == 1 || tls_sequential_depth > 0 || tls_in_pool_job ||
      tls_task_session != nullptr) {
    // Inline degradation: TaskGroups constructed inside root() see no
    // session and run every spawn immediately — the sequential reference.
    stats.width = 1;
    root();
    return stats;
  }
  TaskSession s;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.tasks.push_back(TaskSessionTask{root, nullptr, false});
    s.run_queue.push_back(&s.tasks.back());
    s.unfinished = 1;
  }
  ThreadPool::global().run(static_cast<std::size_t>(stats.width), stats.width,
                           [&s](std::size_t) { session_worker(s); });
  stats.spawned = s.spawned;
  stats.helped = s.helped;
  if (s.error) std::rethrow_exception(s.error);
  return stats;
}

bool TaskGraph::in_session() { return tls_task_session != nullptr; }

TaskGroup::TaskGroup() : session_(tls_task_session) {}

TaskGroup::~TaskGroup() {
  UMC_ASSERT_MSG(outstanding_ == 0, "TaskGroup destroyed with unjoined tasks");
}

void TaskGroup::spawn(std::function<void()> fn) {
  if (session_ == nullptr) {
    fn();  // no session: the spawn IS the sequential execution
    return;
  }
  {
    std::lock_guard<std::mutex> lock(session_->mu);
    session_->tasks.push_back(TaskSessionTask{std::move(fn), this, false});
    TaskSessionTask* t = &session_->tasks.back();
    session_->run_queue.push_back(t);
    local_queue_.push_back(t);
    ++outstanding_;
    ++session_->unfinished;
    ++session_->spawned;
  }
  session_->cv.notify_one();
}

void TaskGroup::join() {
  if (session_ == nullptr) return;  // inline spawns already ran
  TaskSession& s = *session_;
  std::unique_lock<std::mutex> lock(s.mu);
  while (outstanding_ > 0) {
    // Own tasks first (keeps the help stack at plain recursion depth),
    // then help any other queued task, and only then block — at that point
    // every remaining task of this group is running on another thread.
    TaskSessionTask* t = s.claim_locked(local_queue_);
    if (t == nullptr) {
      t = s.claim_locked(s.run_queue);
      if (t != nullptr) ++s.helped;
    }
    if (t == nullptr) {
      s.cv.wait(lock);
      continue;
    }
    lock.unlock();
    s.execute(t);
    lock.lock();
  }
}

}  // namespace umc
