#include "mincut/instance.hpp"

namespace umc::mincut {

Instance make_root_instance(const WeightedGraph& g, std::span<const EdgeId> tree_edges,
                            NodeId root) {
  Instance inst;
  inst.graph = g;
  inst.is_virtual.assign(static_cast<std::size_t>(g.n()), false);
  inst.tree_edges.assign(tree_edges.begin(), tree_edges.end());
  inst.root = root;
  inst.origin.assign(static_cast<std::size_t>(g.m()), kNoEdge);
  for (const EdgeId e : tree_edges) inst.origin[static_cast<std::size_t>(e)] = e;
  return inst;
}

RemappedGraph remap_graph(const WeightedGraph& src, std::span<const EdgeId> src_origin,
                          std::span<const NodeId> node_map, NodeId new_n) {
  UMC_ASSERT(static_cast<NodeId>(node_map.size()) == src.n());
  UMC_ASSERT(static_cast<EdgeId>(src_origin.size()) == src.m());
  RemappedGraph out;
  out.graph = WeightedGraph(new_n);
  out.edge_map.assign(static_cast<std::size_t>(src.m()), kNoEdge);
  for (EdgeId e = 0; e < src.m(); ++e) {
    const Edge& ed = src.edge(e);
    const NodeId u = node_map[static_cast<std::size_t>(ed.u)];
    const NodeId v = node_map[static_cast<std::size_t>(ed.v)];
    UMC_ASSERT(u >= 0 && u < new_n && v >= 0 && v < new_n);
    if (u == v) continue;  // region-internal edge: self-loop, dropped
    out.edge_map[static_cast<std::size_t>(e)] = out.graph.add_edge(u, v, ed.w);
    out.origin.push_back(src_origin[static_cast<std::size_t>(e)]);
  }
  return out;
}

}  // namespace umc::mincut
