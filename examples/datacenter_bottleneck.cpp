// Scenario: bandwidth-bottleneck discovery in a well-connected cluster
// fabric.
//
// A datacenter fabric is an expander-like graph (small diameter, high
// connectivity). The global min-cut is the fabric's bisection bottleneck:
// the smallest total link bandwidth whose failure partitions the cluster.
// High connectivity means the tree packing takes the Karger-sampling route
// (Theorem 12 case B), and the compiled CONGEST cost is √n-dominated
// (D = O(log n)) — the paper's general-graph Õ(D+√n) target.
//
// The example also contrasts the naive operational alternative — stream the
// whole topology to one controller (Θ(D + m) rounds) — with the in-network
// computation.
//
//   $ ./example_datacenter_bottleneck [racks=96]

#include <cstdio>
#include <cstdlib>

#include "baseline/stoer_wagner.hpp"
#include "congest/compile.hpp"
#include "congest/gather_baseline.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mincut/exact_mincut.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace umc;
  const NodeId racks = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 96;

  Rng rng(11);
  // Random 10-regular-ish fabric; link bandwidths 10..100 Gbps.
  WeightedGraph g = erdos_renyi_connected(racks, 10.0 / static_cast<double>(racks - 1), rng);
  randomize_weights(g, 10, 100, rng);
  std::printf("fabric: %d racks, %d links, diameter %d\n", g.n(), g.m(), approx_diameter(g));

  minoragg::Ledger ledger;
  mincut::PackingConfig config;
  config.max_trees = 24;
  const mincut::ExactMinCutResult cut = mincut::exact_mincut(g, rng, ledger, config);
  const Weight reference = baseline::stoer_wagner(g).value;

  std::printf("\nbisection bottleneck: %lld Gbps (%s vs centralized oracle)\n",
              static_cast<long long>(cut.value),
              cut.value == reference ? "match" : "MISMATCH");
  if (cut.f != kNoEdge) {
    std::printf("  witnessed by tree edges {%d,%d} + {%d,%d} of packing tree #%d\n",
                g.edge(cut.e).u, g.edge(cut.e).v, g.edge(cut.f).u, g.edge(cut.f).v,
                cut.winning_tree);
  }

  const congest::CompileCost cost = congest::measure_compile_cost(g, ledger);
  const congest::GatherBaselineResult naive = congest::gather_exact_mincut(g, 0);
  std::printf("\nin-network computation:\n");
  std::printf("  minor-aggregation rounds: %lld over %d packing trees\n",
              static_cast<long long>(cost.ma_rounds), cut.num_trees);
  std::printf("  compiled CONGEST rounds (measured O(D+sqrt(n)) part-wise agg): %lld\n",
              static_cast<long long>(cost.congest_rounds_general()));
  std::printf("naive controller gather: %lld rounds (grows with every added link)\n",
              static_cast<long long>(naive.rounds_used));
  std::printf("  per-round PA cost here: %lld ~ D + sqrt(n) = %d + %.0f\n",
              static_cast<long long>(cost.pa_rounds_general), cost.diameter,
              __builtin_sqrt(static_cast<double>(g.n())));
  return cut.value == reference ? 0 : 1;
}
