#pragma once

// Shared helpers for the experiment benches (E1-E14 in DESIGN.md).
//
// Conventions: every bench reports the quantities the paper's claims are
// about as google-benchmark counters — Minor-Aggregation rounds
// ("ma_rounds"), compiled CONGEST rounds ("congest_*"), hop diameter ("D"),
// and per-experiment structure counters. Heavy measurements run once per
// configuration (Iterations(1)).
//
// Wall time: since the round-execution engine landed (plan cache + scratch
// reuse + deterministic chunk-parallel folds, see DESIGN.md), the simulator
// is fast enough that google-benchmark's Time/CPU columns are meaningful
// measurements of host cost, not simulator noise — bench_round_engine
// tracks them explicitly. Round counters remain the primary quantities; the
// engine never changes them.

#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "minoragg/ledger.hpp"
#include "tree/spanning.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace umc::benchutil {

/// Copies every ledger counter (and the round count) into the benchmark's
/// counter table.
inline void export_ledger(benchmark::State& state, const minoragg::Ledger& ledger) {
  state.counters["ma_rounds"] = static_cast<double>(ledger.rounds());
  for (const auto& [key, value] : ledger.counters())
    state.counters[key] = static_cast<double>(value);
}

/// Square grid with random weights — the excluded-minor workhorse.
inline WeightedGraph weighted_grid(NodeId side, std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph g = grid_graph(side, side);
  randomize_weights(g, 1, 100, rng);
  return g;
}

/// Connected Erdős–Rényi with random weights — the general-graph workhorse.
inline WeightedGraph weighted_er(NodeId n, double avg_degree, std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph g = erdos_renyi_connected(n, avg_degree / static_cast<double>(n - 1), rng);
  randomize_weights(g, 1, 100, rng);
  return g;
}

}  // namespace umc::benchutil
