#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

namespace umc::obs {

namespace {

/// Minimal JSON string escaping (names/keys are controlled literals, but a
/// stray quote must not corrupt the document).
std::string json_escape(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Nanoseconds rendered as microseconds with fixed 3 decimals — the
/// trace_event `ts`/`dur` unit, full precision, reproducibly formatted.
void write_us(std::ostream& os, std::int64_t ns) {
  const bool neg = ns < 0;
  const std::int64_t abs = neg ? -ns : ns;
  if (neg) os << '-';
  os << abs / 1000 << '.' << std::setw(3) << std::setfill('0') << abs % 1000
     << std::setfill(' ');
}

std::string labels_suffix(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::int64_t dropped) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"" << json_escape(ev.cat)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.tid << ",\"ts\":";
    write_us(os, ev.t0_ns);
    os << ",\"dur\":";
    write_us(os, ev.dur_ns);
    os << ",\"args\":{";
    bool first_arg = true;
    if (ev.logical >= 0) {
      os << "\"logical\":" << ev.logical;
      first_arg = false;
    }
    for (const TraceEvent::Arg& a : ev.args) {
      if (a.key == nullptr) continue;
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << json_escape(a.key) << "\":" << a.value;
    }
    os << "}}";
  }
  os << "],\"otherData\":{\"dropped_events\":" << dropped << "}}\n";
}

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  for (const MetricsRegistry::Family& fam : registry.families()) {
    if (!fam.help.empty()) os << "# HELP " << fam.name << ' ' << fam.help << '\n';
    os << "# TYPE " << fam.name << ' ' << type_name(fam.type) << '\n';
    for (const MetricsRegistry::Instance& inst : fam.instances) {
      const std::string labels = labels_suffix(inst.labels);
      if (inst.counter != nullptr) {
        os << fam.name << labels << ' ' << inst.counter->value() << '\n';
      } else if (inst.gauge != nullptr) {
        os << fam.name << labels << ' ' << inst.gauge->value() << '\n';
      } else if (inst.histogram != nullptr) {
        // Cumulative buckets, per the exposition format.
        const std::vector<std::int64_t> counts = inst.histogram->bucket_counts();
        const std::vector<std::int64_t>& bounds = inst.histogram->bounds();
        std::int64_t cum = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cum += counts[i];
          Labels with_le = inst.labels;
          with_le.emplace_back("le", std::to_string(bounds[i]));
          os << fam.name << "_bucket" << labels_suffix(with_le) << ' ' << cum << '\n';
        }
        cum += counts.back();
        Labels inf = inst.labels;
        inf.emplace_back("le", "+Inf");
        os << fam.name << "_bucket" << labels_suffix(inf) << ' ' << cum << '\n';
        os << fam.name << "_sum" << labels << ' ' << inst.histogram->sum() << '\n';
        os << fam.name << "_count" << labels << ' ' << inst.histogram->count() << '\n';
      }
    }
  }
}

void write_flat_table(std::ostream& os, const MetricsRegistry& registry) {
  // Two passes: measure the name column, then print aligned.
  std::vector<std::pair<std::string, std::string>> rows;
  for (const MetricsRegistry::Family& fam : registry.families()) {
    for (const MetricsRegistry::Instance& inst : fam.instances) {
      const std::string id = fam.name + labels_suffix(inst.labels);
      if (inst.counter != nullptr) {
        rows.emplace_back(id, std::to_string(inst.counter->value()));
      } else if (inst.gauge != nullptr) {
        rows.emplace_back(id, std::to_string(inst.gauge->value()));
      } else if (inst.histogram != nullptr) {
        const std::int64_t count = inst.histogram->count();
        const std::int64_t sum = inst.histogram->sum();
        std::ostringstream v;
        v << "count=" << count << " sum=" << sum << " avg=";
        if (count == 0)
          v << "-";
        else
          v << std::fixed << std::setprecision(2)
            << static_cast<double>(sum) / static_cast<double>(count);
        rows.emplace_back(id, v.str());
      }
    }
  }
  std::size_t width = 0;
  for (const auto& [id, value] : rows) width = std::max(width, id.size());
  for (const auto& [id, value] : rows)
    os << std::left << std::setw(static_cast<int>(width) + 2) << id << value << '\n';
}

}  // namespace umc::obs
