# Empty dependencies file for bench_one_respecting.
# This may be replaced when dependencies are built.
