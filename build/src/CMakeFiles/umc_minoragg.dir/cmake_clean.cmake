file(REMOVE_RECURSE
  "CMakeFiles/umc_minoragg.dir/minoragg/boruvka.cpp.o"
  "CMakeFiles/umc_minoragg.dir/minoragg/boruvka.cpp.o.d"
  "CMakeFiles/umc_minoragg.dir/minoragg/cole_vishkin.cpp.o"
  "CMakeFiles/umc_minoragg.dir/minoragg/cole_vishkin.cpp.o.d"
  "CMakeFiles/umc_minoragg.dir/minoragg/network.cpp.o"
  "CMakeFiles/umc_minoragg.dir/minoragg/network.cpp.o.d"
  "CMakeFiles/umc_minoragg.dir/minoragg/star_merge.cpp.o"
  "CMakeFiles/umc_minoragg.dir/minoragg/star_merge.cpp.o.d"
  "CMakeFiles/umc_minoragg.dir/minoragg/tree_primitives.cpp.o"
  "CMakeFiles/umc_minoragg.dir/minoragg/tree_primitives.cpp.o.d"
  "CMakeFiles/umc_minoragg.dir/minoragg/virtual_graph.cpp.o"
  "CMakeFiles/umc_minoragg.dir/minoragg/virtual_graph.cpp.o.d"
  "libumc_minoragg.a"
  "libumc_minoragg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umc_minoragg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
