file(REMOVE_RECURSE
  "libumc_minoragg.a"
)
