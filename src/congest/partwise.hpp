#pragma once

// Part-wise aggregation in CONGEST — the engine behind the Theorem 17
// compilation of Minor-Aggregation rounds.
//
// Problem (Theorem 17 proof): given disjoint *connected* parts P_1..P_k and
// a private value per node, every node of P_i must learn the aggregate over
// P_i. The classic O(D + √n)-quality solution [11, 19] is implemented and
// *measured*:
//   * parts with <= √n nodes aggregate inside their own subtrees — all in
//     parallel (node-disjoint), cost = max internal eccentricity <= √n;
//   * larger parts (at most √n of them) pipeline over the global BFS tree —
//     a greedy convergecast + broadcast schedule moving one (part, value)
//     pair per edge per round, cost <= O(D + #large parts), measured.

#include <span>
#include <vector>

#include "congest/bfs_tree.hpp"
#include "congest/congest_net.hpp"

namespace umc::congest {

/// Fold operator for part-wise aggregation. Values are one CONGEST word;
/// min-folds can carry packed (key, tag) pairs.
enum class PartwiseOp { kSum, kMin };

struct PartwiseResult {
  /// Per node: the fold over its part (identity for nodes outside every
  /// part: 0 for sum, INT64_MAX for min).
  std::vector<std::int64_t> value;
  std::int64_t rounds_used = 0;
  std::int64_t small_phase_rounds = 0;
  std::int64_t large_phase_rounds = 0;
  int num_parts = 0;
  int num_large_parts = 0;
};

/// part[v] = part id (>= 0) or -1 for "no part". Parts must induce
/// connected subgraphs.
[[nodiscard]] PartwiseResult partwise_aggregate(CongestNetwork& net, std::span<const int> part,
                                                std::span<const std::int64_t> input,
                                                PartwiseOp op = PartwiseOp::kSum);

/// Canonical "hard" partition used by the compile-cost experiments: carve a
/// random spanning tree into connected parts of ~⌈√n⌉ nodes. Returns part
/// ids per node.
[[nodiscard]] std::vector<int> sqrt_carve_partition(const WeightedGraph& g, std::uint64_t seed);

}  // namespace umc::congest
