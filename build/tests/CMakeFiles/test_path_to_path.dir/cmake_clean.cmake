file(REMOVE_RECURSE
  "CMakeFiles/test_path_to_path.dir/test_path_to_path.cpp.o"
  "CMakeFiles/test_path_to_path.dir/test_path_to_path.cpp.o.d"
  "test_path_to_path"
  "test_path_to_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_to_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
