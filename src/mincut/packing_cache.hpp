#pragma once

// PackingCache — reusable tree packings keyed by (graph fingerprint, rng
// state, packing configuration).
//
// The packing producer is deterministic given its inputs: the graph, the
// generator state at entry, and the PackingConfig. exact_mincut_guarded
// exploits exactly that determinism for its self-check — it replays the
// packing from the same seed and compares — which previously meant paying
// the full ~2·λ·log m MST iterations a second time. The cache stores, per
// key, everything a replay observes: the emitted trees (in order), the
// packing metadata, the ledger charges, and the generator state at exit.
// A hit streams the stored trees through the caller's sink, absorbs the
// stored charges, and fast-forwards the caller's Rng — bit-identical to a
// recompute for every downstream consumer, at O(output) cost.
//
// The same mechanism is the warm-start foundation the ROADMAP's streaming
// and daemon items call for: a resident session re-solving an unchanged
// graph (or replaying a tenant request) hits instead of repacking.
//
// Keys fingerprint the full edge list (order, endpoints, weights), so any
// topology or weight mutation misses naturally — that IS the invalidation
// rule. Entries are LRU-evicted beyond a small capacity; lookups return
// shared_ptr snapshots so eviction never invalidates a reader.
//
// Thread safety: all operations take the cache mutex; entries are immutable
// after insert.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "minoragg/ledger.hpp"
#include "util/rng.hpp"

namespace umc::mincut {

/// Cache key. `config_fp` folds every PackingConfig field the producer
/// branches on (built by tree_packing.cpp, which owns the config layout).
struct PackingKey {
  std::uint64_t graph_fp = 0;
  std::uint64_t config_fp = 0;
  Rng::State rng_state{};

  auto operator<=>(const PackingKey&) const = default;
};

/// Everything a tree_packing call produces, replayable on a hit.
struct PackingEntry {
  std::vector<std::vector<EdgeId>> trees;  // original-graph edge ids, emit order
  Weight lambda_seed = 0;
  bool sampled = false;
  minoragg::Ledger charges;  // rounds + counters the producer charged
  Rng::State rng_after{};    // generator state when the producer returned
};

class PackingCache {
 public:
  /// The process-wide cache. Thread-safe.
  static PackingCache& global();

  /// Returns the entry for `key`, refreshing its LRU position, or null.
  /// Counts a hit or a miss.
  [[nodiscard]] std::shared_ptr<const PackingEntry> lookup(const PackingKey& key);

  /// Inserts (or replaces) the entry for `key`, evicting the least recently
  /// used entry beyond capacity.
  void insert(const PackingKey& key, std::shared_ptr<const PackingEntry> entry);

  /// Drops every entry (hit/miss statistics survive).
  void clear();

  /// Maximum resident entries (default 4); setting a smaller capacity
  /// evicts immediately.
  void set_capacity(std::size_t cap);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;

 private:
  using LruList = std::list<std::pair<PackingKey, std::shared_ptr<const PackingEntry>>>;

  void evict_locked();

  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::map<PackingKey, LruList::iterator> index_;
  std::size_t capacity_ = 4;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Order-sensitive fingerprint of (n, m, every edge's endpoints and weight).
/// Mutating any edge — including via set_weight — changes it, which is what
/// invalidates cached packings for mutated graphs.
[[nodiscard]] std::uint64_t graph_fingerprint(const WeightedGraph& g);

}  // namespace umc::mincut
