#include "baseline/stoer_wagner.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace umc::baseline {

GlobalMinCut stoer_wagner(const WeightedGraph& g) {
  const NodeId n = g.n();
  UMC_ASSERT_MSG(n >= 2, "a min-cut needs at least two nodes");

  // Dense adjacency (parallel edges summed).
  std::vector<std::vector<Weight>> w(static_cast<std::size_t>(n),
                                     std::vector<Weight>(static_cast<std::size_t>(n), 0));
  for (const Edge& e : g.edges()) {
    w[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] += e.w;
    w[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] += e.w;
  }

  // merged[v]: the original nodes currently fused into v.
  std::vector<std::vector<NodeId>> merged(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) merged[static_cast<std::size_t>(v)] = {v};
  std::vector<bool> gone(static_cast<std::size_t>(n), false);

  GlobalMinCut best;
  best.value = -1;  // sentinel: unset

  for (NodeId phase = 0; phase < n - 1; ++phase) {
    // Maximum-adjacency ordering over the surviving nodes.
    std::vector<Weight> conn(static_cast<std::size_t>(n), 0);
    std::vector<bool> added(static_cast<std::size_t>(n), false);
    NodeId prev = kNoNode, last = kNoNode;
    const NodeId alive = n - phase;
    for (NodeId step = 0; step < alive; ++step) {
      NodeId pick = kNoNode;
      for (NodeId v = 0; v < n; ++v) {
        if (gone[static_cast<std::size_t>(v)] || added[static_cast<std::size_t>(v)]) continue;
        if (pick == kNoNode || conn[static_cast<std::size_t>(v)] > conn[static_cast<std::size_t>(pick)])
          pick = v;
      }
      added[static_cast<std::size_t>(pick)] = true;
      prev = last;
      last = pick;
      for (NodeId v = 0; v < n; ++v) {
        if (!gone[static_cast<std::size_t>(v)] && !added[static_cast<std::size_t>(v)])
          conn[static_cast<std::size_t>(v)] += w[static_cast<std::size_t>(pick)][static_cast<std::size_t>(v)];
      }
    }

    // Cut-of-the-phase: `last` against the rest.
    const Weight phase_cut = conn[static_cast<std::size_t>(last)];
    if (best.value < 0 || phase_cut < best.value) {
      best.value = phase_cut;
      best.side = merged[static_cast<std::size_t>(last)];
    }

    // Merge `last` into `prev`.
    UMC_ASSERT_MSG(prev != kNoNode, "graph must be connected");
    gone[static_cast<std::size_t>(last)] = true;
    for (NodeId v = 0; v < n; ++v) {
      if (gone[static_cast<std::size_t>(v)]) continue;
      w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)] +=
          w[static_cast<std::size_t>(last)][static_cast<std::size_t>(v)];
      w[static_cast<std::size_t>(v)][static_cast<std::size_t>(prev)] =
          w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)];
    }
    auto& dst = merged[static_cast<std::size_t>(prev)];
    auto& src = merged[static_cast<std::size_t>(last)];
    dst.insert(dst.end(), src.begin(), src.end());
    src.clear();
  }
  std::sort(best.side.begin(), best.side.end());
  return best;
}

}  // namespace umc::baseline
