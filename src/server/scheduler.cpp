#include "server/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace umc::server {

const char* to_string(Admit a) {
  switch (a) {
    case Admit::kAdmitted: return "admitted";
    case Admit::kQueueFull: return "queue-full";
    case Admit::kTenantOverload: return "tenant-overload";
    case Admit::kShuttingDown: return "shutting-down";
  }
  return "?";
}

FairScheduler::FairScheduler(SchedulerConfig cfg) : cfg_(cfg) {
  UMC_ASSERT(cfg_.width >= 1);
  UMC_ASSERT(cfg_.max_queued_global >= 1 && cfg_.max_queued_per_tenant >= 1);
  UMC_ASSERT(cfg_.max_inflight_per_tenant >= 1);
  paused_ = cfg_.start_paused;
}

FairScheduler::~FairScheduler() {
  // run() must have returned (or never started): no queued or running work.
  UMC_ASSERT_MSG(queued_ == 0 && inflight_ == 0,
                 "FairScheduler destroyed with pending work (close() + run() first)");
}

void FairScheduler::set_weight(const std::string& tenant, std::int64_t weight) {
  const std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  t.weight = std::clamp<std::int64_t>(weight, 1, 1000);
}

Admit FairScheduler::submit(const std::string& tenant, Job job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++stats_.rejected_shutting_down;
      return Admit::kShuttingDown;
    }
    if (queued_ >= cfg_.max_queued_global) {
      ++stats_.rejected_queue_full;
      return Admit::kQueueFull;
    }
    Tenant& t = tenants_[tenant];
    if (static_cast<int>(t.queue.size()) >= cfg_.max_queued_per_tenant) {
      ++stats_.rejected_tenant_overload;
      return Admit::kTenantOverload;
    }
    // An idle tenant re-enters at the current virtual time: fairness is
    // forward-looking, not banked credit from idle periods.
    if (t.queue.empty() && t.inflight == 0) t.pass = std::max(t.pass, virtual_time_);
    t.queue.push_back(std::move(job));
    ++queued_;
    ++stats_.admitted;
  }
  work_cv_.notify_one();
  return Admit::kAdmitted;
}

FairScheduler::Tenant* FairScheduler::pick_locked(std::string* name) {
  Tenant* best = nullptr;
  for (auto& [tenant_name, t] : tenants_) {
    if (t.queue.empty() || t.inflight >= cfg_.max_inflight_per_tenant) continue;
    // std::map iterates names in order, so strict < keeps the first (and
    // lexicographically smallest) tenant on pass ties — deterministic.
    if (best == nullptr || t.pass < best->pass) {
      best = &t;
      *name = tenant_name;
    }
  }
  return best;
}

void FairScheduler::worker_loop() {
  // A worker IS a pool job: force ThreadPool::run() calls made by the jobs
  // it executes (per-tree solve fan-outs and the like) down to the inline
  // sequential path instead of re-entering the occupied pool.
  const ThreadPool::SequentialScope sequential;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::string name;
    Tenant* t = nullptr;
    work_cv_.wait(lock, [&] {
      if (closed_ && queued_ == 0) return true;
      if (paused_) return false;
      t = pick_locked(&name);
      return t != nullptr;
    });
    if (t == nullptr) return;  // closed and drained

    Job job = std::move(t->queue.front());
    t->queue.pop_front();
    --queued_;
    ++t->inflight;
    ++inflight_;
    ++stats_.dispatched;
    t->pass += kStrideScale / t->weight;
    virtual_time_ = t->pass;

    lock.unlock();
    job();
    job = nullptr;  // release captures before re-locking
    lock.lock();

    // Completing a job can make this tenant eligible again (in-flight cap).
    Tenant& done = tenants_[name];
    --done.inflight;
    --inflight_;
    if (!done.queue.empty()) work_cv_.notify_one();
    if (queued_ == 0 && inflight_ == 0) idle_cv_.notify_all();
  }
}

void FairScheduler::run() {
  // One pool generation of `width` long-lived worker jobs; the caller
  // participates, so width 1 never touches pool workers at all.
  ThreadPool::global().run(static_cast<std::size_t>(cfg_.width), cfg_.width,
                           [this](std::size_t) { worker_loop(); });
  const std::lock_guard<std::mutex> lock(mu_);
  UMC_ASSERT(queued_ == 0 && inflight_ == 0);
}

void FairScheduler::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    paused_ = false;  // a paused backlog must still drain
  }
  work_cv_.notify_all();
}

void FairScheduler::pause() {
  const std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void FairScheduler::resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void FairScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queued_ == 0 && inflight_ == 0; });
}

int FairScheduler::pending(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  return static_cast<int>(it->second.queue.size()) + it->second.inflight;
}

int FairScheduler::queued_total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

bool FairScheduler::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

FairScheduler::Stats FairScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace umc::server
