#pragma once

// A small shared worker pool for deterministic chunk-parallel folds.
//
// The pool executes index-space jobs: run(count, width, job) invokes
// job(0), ..., job(count-1) exactly once each, spread over up to `width`
// threads (the calling thread participates), and returns only when every
// invocation has finished. Chunk *scheduling* is nondeterministic, so
// callers must make their outputs independent of execution order — the
// round-execution engine does this by giving each chunk a disjoint output
// range and merging per-chunk results in chunk order (the Def. 7
// determinism contract: results are bit-identical at any thread count).
//
// Sizing: the process-wide pool (`ThreadPool::global()`) lazily grows to
// the widest request it has served. `configured_threads()` reads the
// UMC_THREADS environment knob (default: hardware concurrency) and is the
// width used by engines unless overridden per-engine. Jobs must not call
// back into run() (no nested parallelism).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace umc {

class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool. Thread-safe.
  static ThreadPool& global();

  /// The UMC_THREADS knob: a positive integer, defaulting to
  /// std::thread::hardware_concurrency() (at least 1), clamped to [1, 64].
  /// Read once at first use.
  static int configured_threads();

  /// Runs job(i) for every i in [0, count) across up to `width` threads
  /// (including the caller) and blocks until all invocations finished.
  /// width <= 1 or count <= 1 degrades to a plain sequential loop on the
  /// calling thread. Must not be called from inside a running job; calls
  /// from distinct threads are serialized (one run owns the pool at a time).
  void run(std::size_t count, int width, const std::function<void(std::size_t)>& job);

  /// Number of worker threads currently spawned (excludes callers).
  [[nodiscard]] int workers() const;

  /// While alive on a thread, run() calls from that thread degrade to the
  /// inline sequential loop regardless of the requested width. Outer
  /// parallel drivers (e.g. the per-tree fan-out in exact_mincut) install
  /// one inside each job so width-parallel library code they call nests
  /// safely — outputs are width-independent by the Def. 7 contract, so
  /// forcing the inner width to 1 changes nothing observable.
  class SequentialScope {
   public:
    SequentialScope();
    ~SequentialScope();
    SequentialScope(const SequentialScope&) = delete;
    SequentialScope& operator=(const SequentialScope&) = delete;
  };

  /// Stable index of the calling thread within the pool: 0 for any thread
  /// that is not a pool worker (submitters included), worker id + 1 for
  /// workers. Observability only — do not branch algorithm logic on it.
  [[nodiscard]] static int current_index();

 private:
  void ensure_workers(int want);
  void worker_loop(int id);
  /// Pops and executes indices of generation `gen`, returning as soon as the
  /// pool has moved past it (stale wake-ups execute nothing).
  void drain(std::uint64_t gen);

  std::mutex run_mu_;  // serializes external run() submitters
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a generation
  std::condition_variable done_cv_;   // run() waits here for completion
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // State of the current generation (guarded by mu_; indices handed out
  // under the lock — chunk bodies are coarse, so contention is negligible
  // and the simple locking scheme is trivially race-free).
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t next_ = 0;       // next index to hand out
  std::size_t total_ = 0;      // indices in this generation
  std::size_t remaining_ = 0;  // invocations not yet finished
  int allowed_workers_ = 0;    // workers with id < allowed participate
};

}  // namespace umc
