#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/assert.hpp"

namespace umc {

WeightedGraph read_edge_list(std::istream& in) {
  std::string line;
  bool have_n = false;
  WeightedGraph g;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    if (!have_n) {
      long long n = 0;
      if (!(ls >> n)) continue;  // blank/comment line before the header
      UMC_ASSERT_MSG(n >= 0 && n <= (1LL << 30), "node count out of range");
      g = WeightedGraph(static_cast<NodeId>(n));
      have_n = true;
    } else {
      long long u = 0, v = 0, w = 1;
      if (!(ls >> u)) continue;
      UMC_ASSERT_MSG(static_cast<bool>(ls >> v), "edge line needs two endpoints");
      if (!(ls >> w)) w = 1;  // weight optional, defaults to 1
      UMC_ASSERT_MSG(0 <= u && u < g.n() && 0 <= v && v < g.n(), "endpoint out of range");
      g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    }
    std::string junk;
    UMC_ASSERT_MSG(!(ls >> junk), "trailing junk on line " + std::to_string(lineno));
  }
  UMC_ASSERT_MSG(have_n, "missing node-count header");
  return g;
}

WeightedGraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  UMC_ASSERT_MSG(in.good(), "cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const WeightedGraph& g) {
  out << "# unimincut edge list: n, then one 'u v w' per edge\n";
  out << g.n() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

void write_edge_list_file(const std::string& path, const WeightedGraph& g) {
  std::ofstream out(path);
  UMC_ASSERT_MSG(out.good(), "cannot open " + path + " for writing");
  write_edge_list(out, g);
}

}  // namespace umc
