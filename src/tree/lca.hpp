#pragma once

// Lowest-common-ancestor queries via binary lifting.
//
// This is the centralized reference oracle; the distributed algorithms use
// the HL-info labeling scheme (Fact 4, see tree/hld.hpp) instead, and tests
// cross-check the two.

#include <vector>

#include "tree/rooted_tree.hpp"

namespace umc {

class LcaOracle {
 public:
  explicit LcaOracle(const RootedTree& t);

  [[nodiscard]] NodeId lca(NodeId u, NodeId v) const;

  /// k-th ancestor of v (0 = v itself); kNoNode if above the root.
  [[nodiscard]] NodeId kth_ancestor(NodeId v, int k) const;

  /// Hop distance between u and v in the tree.
  [[nodiscard]] int distance(NodeId u, NodeId v) const;

 private:
  const RootedTree* t_;
  int log_;
  std::vector<std::vector<NodeId>> up_;  // up_[j][v] = 2^j-th ancestor
};

}  // namespace umc
