// Experiment E16 (ablation, Appendix A): deterministic Cole-Vishkin star
// merging (Lemma 44) vs the classic randomized coin-flip merging it
// replaces.
//
// Workload: repeatedly merge a singleton partition of a random tree until
// one part remains (the Lemma 47 schedule). Reported: merge iterations and
// total rounds for both strategies. The deterministic variant guarantees
// >= 1/3 of parts merge each iteration; the randomized one merges 1/4 in
// expectation and pays nothing for coloring — the paper's point is that
// determinism costs only the O(log* n) Cole-Vishkin additive term.

#include "bench_common.hpp"
#include "graph/dsu.hpp"
#include "minoragg/star_merge.hpp"
#include "tree/rooted_tree.hpp"

namespace umc {
namespace {

template <typename MergeFn>
std::pair<int, std::int64_t> merge_to_one(const RootedTree& t, MergeFn&& merge_fn) {
  const NodeId n = t.n();
  Dsu parts(n);
  minoragg::Ledger ledger;
  int iterations = 0;
  while (parts.num_components() > 1) {
    std::vector<NodeId> rep_of(static_cast<std::size_t>(n), kNoNode);
    std::vector<NodeId> part_rep;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId r = parts.find(v);
      if (rep_of[static_cast<std::size_t>(r)] == kNoNode) {
        rep_of[static_cast<std::size_t>(r)] = static_cast<NodeId>(part_rep.size());
        part_rep.push_back(r);
      }
    }
    const std::size_t k = part_rep.size();
    std::vector<int> out(k, -1);
    std::vector<NodeId> top(k, kNoNode);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t p = static_cast<std::size_t>(rep_of[static_cast<std::size_t>(parts.find(v))]);
      if (top[p] == kNoNode || t.depth(v) < t.depth(top[p])) top[p] = v;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const NodeId parent = t.parent(top[p]);
      if (parent != kNoNode) out[p] = rep_of[static_cast<std::size_t>(parts.find(parent))];
    }
    const minoragg::StarMergeResult res = merge_fn(out, ledger);
    for (std::size_t p = 0; p < k; ++p)
      if (res.is_joiner[p]) parts.unite(part_rep[p], top[static_cast<std::size_t>(out[p])]);
    ++iterations;
    UMC_ASSERT_MSG(iterations < 100000, "merging must make progress");
  }
  return {iterations, ledger.rounds()};
}

void BM_StarMerge(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  const WeightedGraph g = random_tree(n, rng);
  std::vector<EdgeId> ids(static_cast<std::size_t>(g.m()));
  for (EdgeId e = 0; e < g.m(); ++e) ids[static_cast<std::size_t>(e)] = e;
  const RootedTree t(g, ids, 0);

  std::pair<int, std::int64_t> det{}, rnd{};
  for (auto _ : state) {
    det = merge_to_one(t, [](std::span<const int> out, minoragg::Ledger& l) {
      return minoragg::star_merge(out, l);
    });
    Rng coin(99);
    rnd = merge_to_one(t, [&coin](std::span<const int> out, minoragg::Ledger& l) {
      return minoragg::random_star_merge(out, coin, l);
    });
    benchmark::DoNotOptimize(det);
  }
  state.counters["n"] = n;
  state.counters["det_iterations"] = det.first;
  state.counters["det_rounds"] = static_cast<double>(det.second);
  state.counters["rand_iterations"] = rnd.first;
  state.counters["rand_rounds"] = static_cast<double>(rnd.second);
}

BENCHMARK(BM_StarMerge)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace umc
