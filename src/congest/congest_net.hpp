#pragma once

// Synchronous CONGEST simulator (the model of Peleg [33], Section 1).
//
// Communication happens in rounds; per round each node may send one
// O(log n)-bit message over each incident edge (one per direction). The
// simulator enforces that budget and counts rounds — the quantity every
// Theorem 1 experiment reports.
//
// Algorithms are written as explicit round loops: stage messages with
// `send`, call `end_round` to deliver, read `inbox`.
//
// Fault injection: a FaultInjector attached via `attach_fault_injector` is
// consulted on every physical delivery and may drop, duplicate, or corrupt
// wire traffic and suppress messages of crash-stopped nodes. `end_round` is
// virtual so a reliability layer (fault::ReliableChannel) can compile one
// logical round into several physical ack/retry rounds while algorithm code
// stays unchanged.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace umc::congest {

struct Message {
  NodeId from = kNoNode;
  EdgeId via = kNoEdge;
  std::int64_t payload = 0;
  /// Second word of the message (a CONGEST message is O(log n) bits; a
  /// (part-id, value) pair still fits).
  std::int64_t aux = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Hook consulted by CongestNetwork on every physical round delivery.
/// Implemented by fault::FaultModel; declared here so the congest layer
/// carries no dependency on the fault subsystem.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Mutate round `round`'s wire traffic in place: drop, duplicate, or
  /// bit-corrupt messages, and erase traffic from/to crash-stopped nodes.
  virtual void filter_wire(std::int64_t round, std::vector<Message>& wire) = 0;

  /// False while v is crash-stopped at `round` (its volatile state is gone
  /// and its sends/receives vanish until restart).
  [[nodiscard]] virtual bool alive(std::int64_t round, NodeId v) const = 0;

  /// Append (deduplicated, ascending) nodes whose crash STARTED in
  /// [r0, r1). Compiled drivers use this to decide when to roll back to the
  /// last checkpoint.
  virtual void crashed_between(std::int64_t r0, std::int64_t r1,
                               std::vector<NodeId>& out) const = 0;

  /// Recovery notification: a driver restored node v from its checkpoint at
  /// round `round`. Default is a no-op; FaultModel records it in the log.
  virtual void note_recovery(std::int64_t round, NodeId v) { (void)round; (void)v; }
};

class CongestNetwork {
 public:
  explicit CongestNetwork(const WeightedGraph& g);
  virtual ~CongestNetwork() = default;
  CongestNetwork(const CongestNetwork&) = delete;
  CongestNetwork& operator=(const CongestNetwork&) = delete;

  [[nodiscard]] const WeightedGraph& graph() const { return *g_; }

  /// Stage a message from `from` over edge `via` (delivered to the other
  /// endpoint at `end_round`). At most one message per (edge, direction)
  /// per round — a second send on the same slot violates the model.
  void send(NodeId from, EdgeId via, std::int64_t payload, std::int64_t aux = 0);

  /// Deliver staged messages and advance the round counter. The base class
  /// performs exactly one physical round (through the fault injector, if
  /// any); fault::ReliableChannel overrides this with an ack/retry
  /// compilation of the same logical round.
  virtual void end_round();

  /// Messages delivered to v in the most recent round.
  [[nodiscard]] const std::vector<Message>& inbox(NodeId v) const {
    return inbox_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

  /// Charge rounds without message traffic (e.g. silent waiting rounds of a
  /// synchronized schedule).
  void charge_idle(std::int64_t r) { rounds_ += r; }

  /// Attach (or detach, with nullptr) the fault hook. The injector is not
  /// owned and must outlive the network.
  void attach_fault_injector(FaultInjector* f) { fault_ = f; }
  [[nodiscard]] FaultInjector* fault_injector() const { return fault_; }

 protected:
  /// One physical round: run the staged traffic through the fault injector,
  /// deliver survivors, clear staging, advance the round counter.
  void deliver_physical();

  [[nodiscard]] std::vector<Message>& staged() { return staged_; }
  [[nodiscard]] std::vector<std::vector<Message>>& inboxes() { return inbox_; }
  void clear_staging();

 private:
  const WeightedGraph* g_;
  FaultInjector* fault_ = nullptr;
  std::int64_t rounds_ = 0;
  std::vector<Message> staged_;
  std::vector<bool> slot_used_;  // 2 slots per edge: 2*e + (from==edge.v)
  std::vector<std::vector<Message>> inbox_;
};

}  // namespace umc::congest
