#pragma once

// Umbrella header: the public API of unimincut in one include.
//
//   #include "umc.hpp"
//   umc::WeightedGraph g = ...;
//   umc::minoragg::Ledger ledger;
//   auto cut = umc::mincut::exact_mincut(g, rng, ledger);

#include "baseline/karger.hpp"
#include "baseline/karger_stein.hpp"
#include "baseline/naive_two_respect.hpp"
#include "baseline/stoer_wagner.hpp"
#include "congest/compile.hpp"
#include "congest/compiled_network.hpp"
#include "congest/gather_baseline.hpp"
#include "congest/partwise.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "mincut/exact_mincut.hpp"
#include "mincut/tree_packing.hpp"
#include "mincut/two_respect.hpp"
#include "mincut/witness.hpp"
#include "minoragg/ledger.hpp"
#include "tree/spanning.hpp"
#include "util/rng.hpp"
